// Package riscv generates a gate-level 32-bit RISC-V (RV32I subset) core
// netlist over the 28-cell evaluation library, together with an
// instruction-set simulator and a co-simulation harness that proves the
// generated gates implement the ISA. It is the reproduction's substitute
// for the paper's proprietary "32-bit RISC-V core" benchmark RTL.
package riscv

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// builder provides structural netlist construction over the library with
// automatic net naming and inverter sharing.
type builder struct {
	nl  *netlist.Netlist
	lib *cell.Library

	n        int
	invCache map[string]string
	const0   string
	const1   string
	ref      string // reference net for tie generation
}

func newBuilder(nl *netlist.Netlist, lib *cell.Library, refNet string) *builder {
	return &builder{nl: nl, lib: lib, invCache: make(map[string]string), ref: refNet}
}

func (b *builder) fresh(prefix string) string {
	b.n++
	return fmt.Sprintf("%s_%d", prefix, b.n)
}

func (b *builder) inst(base string, conns map[string]string) {
	c := b.lib.Smallest(base)
	if c == nil {
		panic("riscv: library lacks " + base)
	}
	b.nl.MustAdd(b.fresh("u_"+base), c, conns)
}

// gate adds a cell of the given base with inputs in canonical pin order
// and returns the output net name.
func (b *builder) gate(base string, ins ...string) string {
	c := b.lib.Smallest(base)
	if c == nil {
		panic("riscv: library lacks " + base)
	}
	if len(ins) != len(c.Inputs) {
		panic(fmt.Sprintf("riscv: %s wants %d inputs, got %d", base, len(c.Inputs), len(ins)))
	}
	out := b.fresh("n")
	conns := map[string]string{c.Out.Name: out}
	for i, p := range c.Inputs {
		conns[p.Name] = ins[i]
	}
	b.nl.MustAdd(b.fresh("u_"+base), c, conns)
	return out
}

// Inv returns the complement of a, sharing previously built inverters.
func (b *builder) Inv(a string) string {
	if v, ok := b.invCache[a]; ok {
		return v
	}
	out := b.gate("INV", a)
	b.invCache[a] = out
	b.invCache[out] = a // double inversion short-circuits
	return out
}

func (b *builder) Buf(a string) string                { return b.gate("BUF", a) }
func (b *builder) Nand(a, c string) string            { return b.gate("NAND2", a, c) }
func (b *builder) Nor(a, c string) string             { return b.gate("NOR2", a, c) }
func (b *builder) And(a, c string) string             { return b.gate("AND2", a, c) }
func (b *builder) Or(a, c string) string              { return b.gate("OR2", a, c) }
func (b *builder) Aoi21(a1, a2, c string) string      { return b.gate("AOI21", a1, a2, c) }
func (b *builder) Oai21(a1, a2, c string) string      { return b.gate("OAI21", a1, a2, c) }
func (b *builder) Aoi22(a1, a2, c1, c2 string) string { return b.gate("AOI22", a1, a2, c1, c2) }
func (b *builder) Oai22(a1, a2, c1, c2 string) string { return b.gate("OAI22", a1, a2, c1, c2) }

// Mux returns s ? i1 : i0.
func (b *builder) Mux(i0, i1, s string) string { return b.gate("MUX2", i0, i1, s) }

// Xor builds exclusive-or as OAI22(a, ¬b, ¬a, b).
func (b *builder) Xor(a, c string) string {
	return b.Oai22(a, b.Inv(c), b.Inv(a), c)
}

// Xnor builds the complement via AOI22(a, ¬b, ¬a, b)... which equals
// ¬(a¬b ∨ ¬ab) = XNOR directly.
func (b *builder) Xnor(a, c string) string {
	return b.Aoi22(a, b.Inv(c), b.Inv(a), c)
}

// DFF adds a flip-flop and returns its Q net.
func (b *builder) DFF(d, clk string) string {
	out := b.fresh("q")
	b.inst("DFF", map[string]string{"D": d, "CP": clk, "Q": out})
	return out
}

// DFFR adds a resettable flip-flop (DFFRS with SN tied high) and returns Q.
func (b *builder) DFFR(d, clk, rn string) string {
	out := b.fresh("q")
	b.inst("DFFRS", map[string]string{
		"D": d, "CP": clk, "RN": rn, "SN": b.Const1(), "Q": out,
	})
	return out
}

// Const0 returns a logic-0 net (built once from the reference net).
func (b *builder) Const0() string {
	if b.const0 == "" {
		b.const0 = b.And(b.ref, b.Inv(b.ref))
	}
	return b.const0
}

// Const1 returns a logic-1 net.
func (b *builder) Const1() string {
	if b.const1 == "" {
		b.const1 = b.Or(b.ref, b.Inv(b.ref))
	}
	return b.const1
}

// Bit returns const0/const1 for a literal.
func (b *builder) Bit(v bool) string {
	if v {
		return b.Const1()
	}
	return b.Const0()
}

// bus helpers ----------------------------------------------------------

// bus is a little-endian vector of net names (bus[0] = bit 0).
type bus []string

// busLit builds a constant bus from a literal value.
func (b *builder) busLit(v uint32, width int) bus {
	out := make(bus, width)
	for i := 0; i < width; i++ {
		out[i] = b.Bit(v&(1<<uint(i)) != 0)
	}
	return out
}

// InvBus inverts every bit.
func (b *builder) InvBus(a bus) bus {
	out := make(bus, len(a))
	for i := range a {
		out[i] = b.Inv(a[i])
	}
	return out
}

// MuxBus selects s ? i1 : i0 elementwise.
func (b *builder) MuxBus(i0, i1 bus, s string) bus {
	if len(i0) != len(i1) {
		panic("riscv: MuxBus width mismatch")
	}
	out := make(bus, len(i0))
	for i := range i0 {
		out[i] = b.Mux(i0[i], i1[i], s)
	}
	return out
}

// AndBus ands every bit of a with the scalar s.
func (b *builder) AndBus(a bus, s string) bus {
	out := make(bus, len(a))
	for i := range a {
		out[i] = b.And(a[i], s)
	}
	return out
}

// XorBus xors two buses elementwise.
func (b *builder) XorBus(a, c bus) bus {
	out := make(bus, len(a))
	for i := range a {
		out[i] = b.Xor(a[i], c[i])
	}
	return out
}

// OrReduce returns the OR of all bits (balanced tree).
func (b *builder) OrReduce(a bus) string {
	switch len(a) {
	case 0:
		return b.Const0()
	case 1:
		return a[0]
	}
	mid := len(a) / 2
	return b.Or(b.OrReduce(a[:mid]), b.OrReduce(a[mid:]))
}

// NorReduceIsZero returns 1 iff all bits are 0.
func (b *builder) NorReduceIsZero(a bus) string {
	return b.Inv(b.OrReduce(a))
}

// Adder builds a ripple-carry adder: sum = a + c + cin; returns sum and
// carry-out. Per bit: axb = a⊕c, sum = axb⊕carry,
// cout = ¬AOI22(a, c, axb, carry).
func (b *builder) Adder(a, c bus, cin string) (bus, string) {
	if len(a) != len(c) {
		panic("riscv: adder width mismatch")
	}
	sum := make(bus, len(a))
	carry := cin
	for i := range a {
		axb := b.Xor(a[i], c[i])
		sum[i] = b.Xor(axb, carry)
		carry = b.Inv(b.Aoi22(a[i], c[i], axb, carry))
	}
	return sum, carry
}

// Incr builds a + 1 over the bus (half-adder chain); returns sum.
func (b *builder) Incr(a bus) bus {
	sum := make(bus, len(a))
	carry := ""
	for i := range a {
		if i == 0 {
			sum[0] = b.Inv(a[0])
			carry = a[0]
			continue
		}
		sum[i] = b.Xor(a[i], carry)
		carry = b.And(a[i], carry)
	}
	return sum
}

// Decode2 builds a one-hot decode of the n-bit address bus (2^n outputs).
func (b *builder) Decode2(addr bus) bus {
	outs := bus{b.Const1()}
	for _, abit := range addr {
		nbit := b.Inv(abit)
		next := make(bus, 0, len(outs)*2)
		for _, o := range outs {
			next = append(next, b.And(o, nbit))
		}
		for _, o := range outs {
			next = append(next, b.And(o, abit))
		}
		outs = next
	}
	return outs
}

// MuxTree selects one of the inputs by the select bus (len(ins) must be
// 2^len(sel); ins[k] chosen when sel == k).
func (b *builder) MuxTree(ins []bus, sel bus) bus {
	if len(ins) != 1<<uint(len(sel)) {
		panic(fmt.Sprintf("riscv: MuxTree wants %d inputs, got %d", 1<<uint(len(sel)), len(ins)))
	}
	layer := ins
	for _, s := range sel {
		next := make([]bus, len(layer)/2)
		for k := range next {
			next[k] = b.MuxBus(layer[2*k], layer[2*k+1], s)
		}
		layer = next
	}
	return layer[0]
}

// Eq returns 1 iff the bus equals the literal value.
func (b *builder) Eq(a bus, v uint32) string {
	terms := make(bus, len(a))
	for i := range a {
		if v&(1<<uint(i)) != 0 {
			terms[i] = b.Inv(a[i])
		} else {
			terms[i] = a[i]
		}
	}
	return b.NorReduceIsZero(terms)
}
