package riscv

// Instruction encoders for the implemented RV32I subset. Registers are
// plain uint32 indices; immediates are Go ints with the natural signed
// ranges. These are used by tests, examples and the workload generator.

func enc(op, rd, f3, rs1, rs2, f7 uint32) uint32 {
	return op | rd<<7 | f3<<12 | rs1<<15 | rs2<<20 | f7<<25
}

func encI(op, rd, f3, rs1 uint32, imm int32) uint32 {
	return op | rd<<7 | f3<<12 | rs1<<15 | uint32(imm)<<20
}

// LUI rd, imm20 (imm is the upper-20-bit value, not pre-shifted).
func LUI(rd uint32, imm20 uint32) uint32 { return 0x37 | rd<<7 | (imm20&0xFFFFF)<<12 }

// AUIPC rd, imm20.
func AUIPC(rd uint32, imm20 uint32) uint32 { return 0x17 | rd<<7 | (imm20&0xFFFFF)<<12 }

// JAL rd, offset (byte offset, ±1 MiB, multiple of 2).
func JAL(rd uint32, off int32) uint32 {
	u := uint32(off)
	return 0x6F | rd<<7 |
		((u>>12)&0xFF)<<12 | ((u>>11)&1)<<20 | ((u>>1)&0x3FF)<<21 | ((u>>20)&1)<<31
}

// JALR rd, rs1, imm.
func JALR(rd, rs1 uint32, imm int32) uint32 { return encI(0x67, rd, 0, rs1, imm&0xFFF) }

func encB(f3, rs1, rs2 uint32, off int32) uint32 {
	u := uint32(off)
	return 0x63 | f3<<12 | rs1<<15 | rs2<<20 |
		((u>>11)&1)<<7 | ((u>>1)&0xF)<<8 | ((u>>5)&0x3F)<<25 | ((u>>12)&1)<<31
}

// Branches: offset is a byte offset from this instruction.
func BEQ(rs1, rs2 uint32, off int32) uint32  { return encB(0, rs1, rs2, off) }
func BNE(rs1, rs2 uint32, off int32) uint32  { return encB(1, rs1, rs2, off) }
func BLT(rs1, rs2 uint32, off int32) uint32  { return encB(4, rs1, rs2, off) }
func BGE(rs1, rs2 uint32, off int32) uint32  { return encB(5, rs1, rs2, off) }
func BLTU(rs1, rs2 uint32, off int32) uint32 { return encB(6, rs1, rs2, off) }
func BGEU(rs1, rs2 uint32, off int32) uint32 { return encB(7, rs1, rs2, off) }

// Loads.
func LB(rd, rs1 uint32, imm int32) uint32  { return encI(0x03, rd, 0, rs1, imm&0xFFF) }
func LH(rd, rs1 uint32, imm int32) uint32  { return encI(0x03, rd, 1, rs1, imm&0xFFF) }
func LW(rd, rs1 uint32, imm int32) uint32  { return encI(0x03, rd, 2, rs1, imm&0xFFF) }
func LBU(rd, rs1 uint32, imm int32) uint32 { return encI(0x03, rd, 4, rs1, imm&0xFFF) }
func LHU(rd, rs1 uint32, imm int32) uint32 { return encI(0x03, rd, 5, rs1, imm&0xFFF) }

func encS(f3, rs1, rs2 uint32, imm int32) uint32 {
	u := uint32(imm)
	return 0x23 | f3<<12 | rs1<<15 | rs2<<20 | (u&0x1F)<<7 | ((u>>5)&0x7F)<<25
}

// Stores.
func SB(rs2, rs1 uint32, imm int32) uint32 { return encS(0, rs1, rs2, imm) }
func SH(rs2, rs1 uint32, imm int32) uint32 { return encS(1, rs1, rs2, imm) }
func SW(rs2, rs1 uint32, imm int32) uint32 { return encS(2, rs1, rs2, imm) }

// OP-IMM.
func ADDI(rd, rs1 uint32, imm int32) uint32  { return encI(0x13, rd, 0, rs1, imm&0xFFF) }
func SLTI(rd, rs1 uint32, imm int32) uint32  { return encI(0x13, rd, 2, rs1, imm&0xFFF) }
func SLTIU(rd, rs1 uint32, imm int32) uint32 { return encI(0x13, rd, 3, rs1, imm&0xFFF) }
func XORI(rd, rs1 uint32, imm int32) uint32  { return encI(0x13, rd, 4, rs1, imm&0xFFF) }
func ORI(rd, rs1 uint32, imm int32) uint32   { return encI(0x13, rd, 6, rs1, imm&0xFFF) }
func ANDI(rd, rs1 uint32, imm int32) uint32  { return encI(0x13, rd, 7, rs1, imm&0xFFF) }
func SLLI(rd, rs1, sh uint32) uint32         { return enc(0x13, rd, 1, rs1, sh&31, 0) }
func SRLI(rd, rs1, sh uint32) uint32         { return enc(0x13, rd, 5, rs1, sh&31, 0) }
func SRAI(rd, rs1, sh uint32) uint32         { return enc(0x13, rd, 5, rs1, sh&31, 0x20) }

// OP.
func ADD(rd, rs1, rs2 uint32) uint32  { return enc(0x33, rd, 0, rs1, rs2, 0) }
func SUB(rd, rs1, rs2 uint32) uint32  { return enc(0x33, rd, 0, rs1, rs2, 0x20) }
func SLL(rd, rs1, rs2 uint32) uint32  { return enc(0x33, rd, 1, rs1, rs2, 0) }
func SLT(rd, rs1, rs2 uint32) uint32  { return enc(0x33, rd, 2, rs1, rs2, 0) }
func SLTU(rd, rs1, rs2 uint32) uint32 { return enc(0x33, rd, 3, rs1, rs2, 0) }
func XOR(rd, rs1, rs2 uint32) uint32  { return enc(0x33, rd, 4, rs1, rs2, 0) }
func SRL(rd, rs1, rs2 uint32) uint32  { return enc(0x33, rd, 5, rs1, rs2, 0) }
func SRA(rd, rs1, rs2 uint32) uint32  { return enc(0x33, rd, 5, rs1, rs2, 0x20) }
func OR(rd, rs1, rs2 uint32) uint32   { return enc(0x33, rd, 6, rs1, rs2, 0) }
func AND(rd, rs1, rs2 uint32) uint32  { return enc(0x33, rd, 7, rs1, rs2, 0) }

// NOP is ADDI x0, x0, 0.
func NOP() uint32 { return ADDI(0, 0, 0) }
