package riscv

import (
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/tech"
)

var testLib = cell.NewLibrary(tech.NewFFET())

// smallCore generates the reduced 8-register core used by fast tests.
func smallCore(t testing.TB) (*Harness, *ISS) {
	t.Helper()
	nl, info, err := Generate(testLib, Config{Name: "rv32_test", Registers: 8})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	imem, dmem := NewMemory(), NewMemory()
	h, err := NewHarness(nl, info, imem, dmem)
	if err != nil {
		t.Fatalf("NewHarness: %v", err)
	}
	iss := NewISS(imem, dmem.Clone(), 8)
	return h, iss
}

// cosim loads a program, runs both models n steps, and compares
// architectural state every cycle.
func cosim(t *testing.T, prog []uint32, n int) (*Harness, *ISS) {
	t.Helper()
	h, iss := smallCore(t)
	h.IMem.LoadProgram(0, prog)
	iss.IMem = h.IMem
	h.Reset()
	if pc := h.PC(); pc != 0 {
		t.Fatalf("PC after reset = %#x, want 0", pc)
	}
	for i := 0; i < n; i++ {
		h.StepCycle()
		if err := iss.Step(); err != nil {
			t.Fatalf("ISS step %d: %v", i, err)
		}
		if h.PC() != iss.PC {
			t.Fatalf("step %d: PC gate=%#x iss=%#x", i, h.PC(), iss.PC)
		}
		for r := 1; r < 8; r++ {
			if g, w := h.Reg(r), iss.reg(uint32(r)); g != w {
				t.Fatalf("step %d: x%d gate=%#x iss=%#x", i, r, g, w)
			}
		}
	}
	if !h.DMem.Equal(iss.DMem) {
		t.Fatal("data memories diverged")
	}
	return h, iss
}

func TestGeneratedCoreSize(t *testing.T) {
	nl, _, err := Generate(testLib, DefaultConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	st := nl.Stats()
	if st.Instances < 4000 {
		t.Errorf("full core has %d instances; expected a few thousand", st.Instances)
	}
	if st.Flops < 1024+30 {
		t.Errorf("full core has %d flops, want >= 1054 (regfile+PC)", st.Flops)
	}
	t.Logf("rv32 core: %d instances, %d flops, %d nets, %.1f µm² cell area",
		st.Instances, st.Flops, st.Nets, st.AreaUm2)
}

func TestArithmeticProgram(t *testing.T) {
	prog := []uint32{
		ADDI(1, 0, 5),  // x1 = 5
		ADDI(2, 0, 7),  // x2 = 7
		ADD(3, 1, 2),   // x3 = 12
		SUB(4, 1, 2),   // x4 = -2
		XOR(5, 1, 2),   // x5 = 2
		OR(6, 1, 2),    // x6 = 7
		AND(7, 1, 2),   // x7 = 5
		SLLI(3, 1, 4),  // x3 = 80
		SRAI(4, 4, 1),  // x4 = -1
		SLT(5, 4, 1),   // x5 = 1 (-1 < 5)
		SLTU(6, 4, 1),  // x6 = 0 (0xFFFF.. > 5)
		ADDI(7, 7, -6), // x7 = -1
		SRLI(7, 7, 28), // x7 = 0xF
	}
	h, _ := cosim(t, prog, len(prog))
	// Spot-check a few final values against hand calculation.
	if got := h.Reg(3); got != 80 {
		t.Errorf("x3 = %d, want 80", got)
	}
	if got := h.Reg(4); got != 0xFFFFFFFF {
		t.Errorf("x4 = %#x, want -1", got)
	}
	if got := h.Reg(5); got != 1 {
		t.Errorf("x5 = %d, want 1", got)
	}
	if got := h.Reg(7); got != 0xF {
		t.Errorf("x7 = %#x, want 0xF", got)
	}
}

func TestBranchesAndLoops(t *testing.T) {
	// Sum 1..5 with a loop:
	//   x1 = counter = 5; x2 = acc = 0
	// loop: x2 += x1; x1 -= 1; bne x1, x0, loop
	prog := []uint32{
		ADDI(1, 0, 5),
		ADDI(2, 0, 0),
		ADD(2, 2, 1),   // pc=8
		ADDI(1, 1, -1), // pc=12
		BNE(1, 0, -8),  // pc=16 -> 8
		ADDI(3, 0, 99), // pc=20 (after loop)
	}
	h, _ := cosim(t, prog, 2+3*5+1)
	if got := h.Reg(2); got != 15 {
		t.Errorf("sum = %d, want 15", got)
	}
	if got := h.Reg(3); got != 99 {
		t.Errorf("x3 = %d, want 99 (loop exit)", got)
	}
}

func TestJumpsAndLinks(t *testing.T) {
	prog := []uint32{
		JAL(1, 12),     // pc=0 -> 12, x1 = 4
		ADDI(2, 0, 1),  // pc=4 (skipped, then executed after JALR)
		JAL(0, 12),     // pc=8 -> 20 (exit)
		ADDI(3, 0, 7),  // pc=12
		JALR(4, 1, 0),  // pc=16 -> x1(4), x4 = 20
		ADDI(5, 0, 42), // pc=20 exit block
	}
	h, _ := cosim(t, prog, 6)
	if got := h.Reg(1); got != 4 {
		t.Errorf("link x1 = %d, want 4", got)
	}
	if got := h.Reg(3); got != 7 {
		t.Errorf("x3 = %d, want 7", got)
	}
	if got := h.Reg(4); got != 20 {
		t.Errorf("link x4 = %d, want 20", got)
	}
	if got := h.Reg(2); got != 1 {
		t.Errorf("x2 = %d, want 1 (JALR return)", got)
	}
	if got := h.Reg(5); got != 42 {
		t.Errorf("x5 = %d, want 42", got)
	}
}

func TestLoadStore(t *testing.T) {
	prog := []uint32{
		LUI(1, 0x10),   // x1 = 0x10000 (data segment base)
		ADDI(2, 0, -2), // x2 = 0xFFFFFFFE
		SW(2, 1, 0),    // [0x10000] = FFFFFFFE
		LW(3, 1, 0),    // x3 = FFFFFFFE
		LB(4, 1, 0),    // x4 = sext(0xFE) = -2
		LBU(5, 1, 0),   // x5 = 0xFE
		LH(6, 1, 0),    // x6 = sext(0xFFFE)
		LHU(7, 1, 0),   // x7 = 0xFFFE
		SB(2, 1, 5),    // byte lane 1 of word 1
		SH(2, 1, 10),   // half lane 1 of word 2
		LW(4, 1, 4),
		LW(5, 1, 8),
	}
	h, _ := cosim(t, prog, len(prog))
	if got := h.Reg(3); got != 0xFFFFFFFE {
		t.Errorf("LW = %#x", got)
	}
	if got := h.Reg(4); got != 0x0000FE00 {
		t.Errorf("word after SB = %#x, want 0x0000FE00", got)
	}
	if got := h.Reg(5); got != 0xFFFE0000 {
		t.Errorf("word after SH = %#x, want 0xFFFE0000", got)
	}
	if got := h.Reg(7); got != 0xFFFE {
		t.Errorf("LHU = %#x", got)
	}
}

func TestLUIAUIPC(t *testing.T) {
	prog := []uint32{
		LUI(1, 0xABCDE),  // x1 = 0xABCDE000
		AUIPC(2, 0x1),    // x2 = 4 + 0x1000
		ADDI(3, 1, 0x7F), // x3 = 0xABCDE07F
	}
	h, _ := cosim(t, prog, len(prog))
	if got := h.Reg(1); got != 0xABCDE000 {
		t.Errorf("LUI = %#x", got)
	}
	if got := h.Reg(2); got != 0x1004 {
		t.Errorf("AUIPC = %#x, want 0x1004", got)
	}
	if got := h.Reg(3); got != 0xABCDE07F {
		t.Errorf("x3 = %#x", got)
	}
}

func TestX0IsAlwaysZero(t *testing.T) {
	prog := []uint32{
		ADDI(0, 0, 123), // write to x0 must be ignored on read
		ADD(1, 0, 0),    // x1 = 0
		ADDI(2, 0, 9),
	}
	h, _ := cosim(t, prog, len(prog))
	if got := h.Reg(1); got != 0 {
		t.Errorf("x1 = %d, want 0 (x0 reads as zero)", got)
	}
	if got := h.Reg(2); got != 9 {
		t.Errorf("x2 = %d", got)
	}
}

// TestRandomProgramCosim fuzzes the core against the ISS with random but
// well-formed straight-line arithmetic programs.
func TestRandomProgramCosim(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 4; trial++ {
		var prog []uint32
		// Seed registers.
		for r := uint32(1); r < 8; r++ {
			prog = append(prog, ADDI(r, 0, int32(rng.Intn(2048)-1024)))
		}
		ops := []func(rd, rs1, rs2 uint32) uint32{
			ADD, SUB, SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND,
		}
		for i := 0; i < 40; i++ {
			rd := uint32(1 + rng.Intn(7))
			rs1 := uint32(rng.Intn(8))
			rs2 := uint32(rng.Intn(8))
			switch rng.Intn(4) {
			case 0:
				prog = append(prog, ADDI(rd, rs1, int32(rng.Intn(2048)-1024)))
			case 1:
				prog = append(prog, XORI(rd, rs1, int32(rng.Intn(2048)-1024)))
			default:
				prog = append(prog, ops[rng.Intn(len(ops))](rd, rs1, rs2))
			}
		}
		cosim(t, prog, len(prog))
	}
}

func TestMemoryModel(t *testing.T) {
	m := NewMemory()
	m.StoreWord(0x100, 0xDDCCBBAA, 0xF)
	if got := m.LoadWord(0x100); got != 0xDDCCBBAA {
		t.Errorf("LoadWord = %#x", got)
	}
	if got := m.LoadWord(0x102); got != 0xDDCCBBAA {
		t.Errorf("unaligned-addr word fetch = %#x (same word)", got)
	}
	m.StoreWord(0x100, 0x000000EE, 0x1)
	if got := m.LoadWord(0x100); got != 0xDDCCBBEE {
		t.Errorf("byte-enable store = %#x", got)
	}
	c := m.Clone()
	if !m.Equal(c) {
		t.Error("clone not equal")
	}
	c.StoreWord(0x200, 1, 0xF)
	if m.Equal(c) {
		t.Error("diverged memories reported equal")
	}
}
