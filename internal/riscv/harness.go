package riscv

import (
	"fmt"

	"repro/internal/gatesim"
	"repro/internal/netlist"
)

// Harness drives the gate-level core in gatesim with instruction and data
// memories, mirroring the single-cycle microarchitecture: the fetch address
// is registered (PC), so one settle pass resolves the instruction, a second
// resolves the data read, and the store (if any) commits at the clock edge.
type Harness struct {
	Sim  *gatesim.Simulator
	Info *CoreInfo
	IMem *Memory
	DMem *Memory

	Cycles int
}

// NewHarness wraps a generated core netlist.
func NewHarness(nl *netlist.Netlist, info *CoreInfo, imem, dmem *Memory) (*Harness, error) {
	sim, err := gatesim.New(nl)
	if err != nil {
		return nil, err
	}
	h := &Harness{Sim: sim, Info: info, IMem: imem, DMem: dmem}
	return h, nil
}

func (h *Harness) setBus(prefix string, width int, v uint32) {
	for i := 0; i < width; i++ {
		// Port names are generated; errors would be programming bugs.
		if err := h.Sim.SetPort(fmt.Sprintf("%s_%d", prefix, i), v&(1<<uint(i)) != 0); err != nil {
			panic(err)
		}
	}
}

func (h *Harness) getBus(prefix string, width int) uint32 {
	var v uint32
	for i := 0; i < width; i++ {
		b, err := h.Sim.Port(fmt.Sprintf("%s_%d", prefix, i))
		if err != nil {
			panic(err)
		}
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Reset asserts rst_n low for one cycle and releases it.
func (h *Harness) Reset() {
	h.Sim.SetPort("rst_n", false)
	h.setBus("imem_rdata", 32, 0)
	h.setBus("dmem_rdata", 32, 0)
	h.Sim.Cycle()
	h.Sim.SetPort("rst_n", true)
	h.Sim.Eval()
}

// PC returns the current fetch address.
func (h *Harness) PC() uint32 { return h.getBus("imem_addr", 32) }

// Reg reads an architectural register from the register-file flops.
func (h *Harness) Reg(r int) uint32 {
	if r == 0 {
		return 0
	}
	var v uint32
	for bit := 0; bit < 32; bit++ {
		set, err := h.Sim.State(h.Info.RegFlop[r][bit])
		if err != nil {
			panic(err)
		}
		if set {
			v |= 1 << uint(bit)
		}
	}
	return v
}

// StepCycle executes one clock cycle (one instruction).
func (h *Harness) StepCycle() {
	h.Sim.Eval()
	pc := h.getBus("imem_addr", 32)
	h.setBus("imem_rdata", 32, h.IMem.LoadWord(pc))
	h.Sim.Eval()
	daddr := h.getBus("dmem_addr", 32)
	h.setBus("dmem_rdata", 32, h.DMem.LoadWord(daddr))
	h.Sim.Eval()
	// Capture the store lane before the edge.
	we, err := h.Sim.Port("dmem_we")
	if err != nil {
		panic(err)
	}
	if we {
		wdata := h.getBus("dmem_wdata", 32)
		be := h.getBus("dmem_be", 4)
		h.DMem.StoreWord(daddr, wdata, be)
	}
	h.Sim.Step()
	h.Sim.Eval()
	h.Cycles++
}

// Run executes n cycles.
func (h *Harness) Run(n int) {
	for i := 0; i < n; i++ {
		h.StepCycle()
	}
}
