package riscv

import "fmt"

// Memory is a sparse word-addressed memory with byte-enable writes, shared
// by the ISS and the gate-level harness so both see identical contents.
type Memory struct {
	words map[uint32]uint32
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{words: make(map[uint32]uint32)} }

// LoadWord reads the aligned 32-bit word containing addr.
func (m *Memory) LoadWord(addr uint32) uint32 { return m.words[addr>>2] }

// StoreWord writes the aligned word containing addr under a 4-bit byte
// enable mask (bit k enables byte lane k).
func (m *Memory) StoreWord(addr, data uint32, be uint32) {
	idx := addr >> 2
	old := m.words[idx]
	var mask uint32
	for k := uint32(0); k < 4; k++ {
		if be&(1<<k) != 0 {
			mask |= 0xFF << (8 * k)
		}
	}
	m.words[idx] = (old &^ mask) | (data & mask)
}

// LoadProgram writes a sequence of instruction words starting at base.
func (m *Memory) LoadProgram(base uint32, prog []uint32) {
	for i, w := range prog {
		m.StoreWord(base+uint32(4*i), w, 0xF)
	}
}

// Clone deep-copies the memory.
func (m *Memory) Clone() *Memory {
	out := NewMemory()
	for k, v := range m.words {
		out.words[k] = v
	}
	return out
}

// Equal reports whether two memories hold identical contents.
func (m *Memory) Equal(o *Memory) bool {
	for k, v := range m.words {
		if o.words[k] != v {
			return false
		}
	}
	for k, v := range o.words {
		if m.words[k] != v {
			return false
		}
	}
	return true
}

// ISS is the RV32I-subset instruction-set simulator, the golden reference
// for the gate-level core.
type ISS struct {
	PC   uint32
	Regs [32]uint32
	IMem *Memory
	DMem *Memory
	// RegMask limits architectural registers (31 for RV32I; 7/15 for the
	// reduced test cores, matching Config.Registers-1).
	RegMask uint32
}

// NewISS creates a reset ISS over the given memories.
func NewISS(imem, dmem *Memory, registers int) *ISS {
	return &ISS{IMem: imem, DMem: dmem, RegMask: uint32(registers - 1)}
}

func (s *ISS) reg(i uint32) uint32 {
	i &= s.RegMask
	if i == 0 {
		return 0
	}
	return s.Regs[i]
}

func (s *ISS) setReg(i, v uint32) {
	i &= s.RegMask
	// Note: like the gate-level core, the hardware register x0 has physical
	// flops that are written but always read as zero.
	s.Regs[i] = v
}

// Step executes one instruction. It returns an error for encodings outside
// the implemented subset.
func (s *ISS) Step() error {
	ins := s.IMem.LoadWord(s.PC)
	op := ins & 0x7F
	rd := (ins >> 7) & 0x1F
	f3 := (ins >> 12) & 0x7
	rs1 := (ins >> 15) & 0x1F
	rs2 := (ins >> 20) & 0x1F
	f7 := ins >> 25

	immI := int32(ins) >> 20
	immS := (int32(ins)>>25)<<5 | int32((ins>>7)&0x1F)
	immB := (int32(ins)>>31)<<12 | int32((ins>>7)&1)<<11 |
		int32((ins>>25)&0x3F)<<5 | int32((ins>>8)&0xF)<<1
	immU := int32(ins & 0xFFFFF000)
	immJ := (int32(ins)>>31)<<20 | int32((ins>>12)&0xFF)<<12 |
		int32((ins>>20)&1)<<11 | int32((ins>>21)&0x3FF)<<1

	a := s.reg(rs1)
	bv := s.reg(rs2)
	nextPC := s.PC + 4

	switch op {
	case 0x37: // LUI
		s.setReg(rd, uint32(immU))
	case 0x17: // AUIPC
		s.setReg(rd, s.PC+uint32(immU))
	case 0x6F: // JAL
		s.setReg(rd, s.PC+4)
		nextPC = s.PC + uint32(immJ)
	case 0x67: // JALR
		s.setReg(rd, s.PC+4)
		nextPC = (a + uint32(immI)) &^ 1
	case 0x63: // branches
		var take bool
		switch f3 {
		case 0:
			take = a == bv
		case 1:
			take = a != bv
		case 4:
			take = int32(a) < int32(bv)
		case 5:
			take = int32(a) >= int32(bv)
		case 6:
			take = a < bv
		case 7:
			take = a >= bv
		default:
			return fmt.Errorf("iss: bad branch funct3 %d at pc=%#x", f3, s.PC)
		}
		if take {
			nextPC = s.PC + uint32(immB)
		}
	case 0x03: // loads
		addr := a + uint32(immI)
		word := s.DMem.LoadWord(addr)
		sh := (addr & 3) * 8
		switch f3 {
		case 0: // LB
			s.setReg(rd, uint32(int32(int8(word>>sh))))
		case 1: // LH
			s.setReg(rd, uint32(int32(int16(word>>sh))))
		case 2: // LW
			s.setReg(rd, word)
		case 4: // LBU
			s.setReg(rd, (word>>sh)&0xFF)
		case 5: // LHU
			s.setReg(rd, (word>>sh)&0xFFFF)
		default:
			return fmt.Errorf("iss: bad load funct3 %d at pc=%#x", f3, s.PC)
		}
	case 0x23: // stores
		addr := a + uint32(immS)
		sh := (addr & 3) * 8
		data := bv << sh
		var be uint32
		switch f3 {
		case 0:
			be = 1 << (addr & 3)
		case 1:
			be = 3 << (addr & 3)
		case 2:
			be = 0xF
		default:
			return fmt.Errorf("iss: bad store funct3 %d at pc=%#x", f3, s.PC)
		}
		s.DMem.StoreWord(addr, data, be)
	case 0x13: // OP-IMM
		s.setReg(rd, aluOp(f3, f7, a, uint32(immI), true))
	case 0x33: // OP
		s.setReg(rd, aluOp(f3, f7, a, bv, false))
	default:
		return fmt.Errorf("iss: unimplemented opcode %#x at pc=%#x", op, s.PC)
	}
	s.PC = nextPC & ^uint32(3)
	return nil
}

// aluOp mirrors the gate-level ALU. For immediates the shift amount comes
// from the low 5 bits and SRAI is flagged by bit 30 (f7 bit 5).
func aluOp(f3, f7, a, b uint32, isImm bool) uint32 {
	switch f3 {
	case 0:
		if !isImm && f7&0x20 != 0 {
			return a - b
		}
		return a + b
	case 1:
		return a << (b & 31)
	case 2:
		if int32(a) < int32(b) {
			return 1
		}
		return 0
	case 3:
		if a < b {
			return 1
		}
		return 0
	case 4:
		return a ^ b
	case 5:
		if f7&0x20 != 0 {
			return uint32(int32(a) >> (b & 31))
		}
		return a >> (b & 31)
	case 6:
		return a | b
	default:
		return a & b
	}
}

// Run executes n instructions, stopping early on error.
func (s *ISS) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}
