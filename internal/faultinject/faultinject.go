// Package faultinject is a deterministic, seed-driven fault-injection
// hook for robustness testing of the flow pipeline.
//
// Production code consults the hook at named sites (stage boundaries,
// sweep-worker entry points, long-loop checkpoints) via Fire. With no
// schedule active — the default — Fire is a single atomic load returning
// nil, so instrumented code pays nothing. Tests Activate a Schedule built
// from a seed; the schedule then decides, purely from (seed, site,
// per-site hit index), which hits inject a fault and of which kind:
//
//   - Error:  Fire returns an error wrapping ErrInjected;
//   - Panic:  Fire panics with a PanicValue (the flow's stage recovery is
//     expected to contain it);
//   - Cancel: Fire invokes the schedule's cancel hook (typically a
//     context.CancelFunc) and returns nil — the work keeps running until
//     it observes the cancellation, exactly like a real cancel.
//
// Decisions are deterministic per (site, hit index) even under
// concurrency: each site keeps its own hit counter, so the set of firing
// hits is a pure function of the seed, regardless of which goroutine
// reaches a given hit.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Kind classifies an injected fault.
type Kind uint8

// Fault kinds.
const (
	None Kind = iota
	Error
	Panic
	Cancel
)

// String returns the kind's short name.
func (k Kind) String() string {
	switch k {
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Cancel:
		return "cancel"
	}
	return "none"
}

// ErrInjected is the sentinel every injected error wraps; callers match it
// with errors.Is to tell injected faults from organic failures.
var ErrInjected = errors.New("faultinject: injected error")

// PanicValue is the value injected panics carry, so recovery sites (and
// tests inspecting recovered values) can identify them.
type PanicValue struct {
	Site string
	Hit  uint64
}

// String renders the panic value.
func (p PanicValue) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s (hit %d)", p.Site, p.Hit)
}

// Fired records one fault that fired.
type Fired struct {
	Site string
	Hit  uint64
	Kind Kind
}

// Schedule decides deterministically, from a seed, which site hits inject
// a fault and of which kind. A Schedule is safe for concurrent use.
type Schedule struct {
	seed  uint64
	oneIn uint64 // a hit faults when hash % oneIn == 0; 0 disables
	kinds []Kind
	sites map[string]bool // nil = every site is eligible
	// onCancel is invoked for Cancel faults (typically a context.CancelFunc).
	onCancel func()

	mu     sync.Mutex
	counts map[string]*uint64
	fired  []Fired
}

// Option configures a Schedule.
type Option func(*Schedule)

// WithRate sets the fault rate to roughly one in every oneIn hits
// (decided per hit by the deterministic hash). oneIn <= 1 faults every
// eligible hit.
func WithRate(oneIn uint64) Option {
	return func(s *Schedule) {
		if oneIn < 1 {
			oneIn = 1
		}
		s.oneIn = oneIn
	}
}

// WithKinds restricts the kinds a schedule draws from (default: Error,
// Panic, and Cancel when a cancel hook is set, else Error and Panic).
func WithKinds(kinds ...Kind) Option {
	return func(s *Schedule) { s.kinds = append([]Kind(nil), kinds...) }
}

// WithSites restricts injection to the named sites; other sites never
// fault (their hit counters still advance, keeping decisions stable).
func WithSites(sites ...string) Option {
	return func(s *Schedule) {
		s.sites = make(map[string]bool, len(sites))
		for _, site := range sites {
			s.sites[site] = true
		}
	}
}

// WithCancelFunc sets the hook Cancel faults invoke.
func WithCancelFunc(fn func()) Option {
	return func(s *Schedule) { s.onCancel = fn }
}

// New builds a schedule for a seed. With no options it faults roughly one
// in every 16 hits, drawing from every kind it can honor.
func New(seed uint64, opts ...Option) *Schedule {
	s := &Schedule{seed: seed, oneIn: 16, counts: make(map[string]*uint64)}
	for _, o := range opts {
		o(s)
	}
	if len(s.kinds) == 0 {
		s.kinds = []Kind{Error, Panic}
		if s.onCancel != nil {
			s.kinds = append(s.kinds, Cancel)
		}
	}
	return s
}

// Seed returns the schedule's seed.
func (s *Schedule) Seed() uint64 { return s.seed }

// Fired returns a copy of the faults fired so far, in firing order.
func (s *Schedule) Fired() []Fired {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Fired(nil), s.fired...)
}

// FiredByKind counts fired faults of one kind.
func (s *Schedule) FiredByKind(k Kind) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, f := range s.fired {
		if f.Kind == k {
			n++
		}
	}
	return n
}

// splitmix64 is the SplitMix64 output function — a strong, allocation-free
// mixer for the per-hit decision hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// siteHash folds a site name into a uint64 (FNV-1a).
func siteHash(site string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	return h
}

// nextHit atomically advances and returns the site's hit index.
func (s *Schedule) nextHit(site string) uint64 {
	s.mu.Lock()
	c := s.counts[site]
	if c == nil {
		c = new(uint64)
		s.counts[site] = c
	}
	s.mu.Unlock()
	return atomic.AddUint64(c, 1) - 1
}

// fire consults the schedule at one site hit; see Fire.
func (s *Schedule) fire(site string) error {
	hit := s.nextHit(site)
	if s.sites != nil && !s.sites[site] {
		return nil
	}
	h := splitmix64(s.seed ^ splitmix64(siteHash(site)+hit))
	if s.oneIn == 0 || h%s.oneIn != 0 {
		return nil
	}
	kind := s.kinds[(h>>32)%uint64(len(s.kinds))]
	s.mu.Lock()
	s.fired = append(s.fired, Fired{Site: site, Hit: hit, Kind: kind})
	s.mu.Unlock()
	switch kind {
	case Error:
		return fmt.Errorf("%w at %s (hit %d, seed %#x)", ErrInjected, site, hit, s.seed)
	case Panic:
		panic(PanicValue{Site: site, Hit: hit})
	case Cancel:
		if s.onCancel != nil {
			s.onCancel()
		}
	}
	return nil
}

// active is the process-wide installed schedule; nil (the default) means
// every Fire call is a no-op costing one atomic load.
var active atomic.Pointer[Schedule]

// Enabled reports whether a schedule is active.
func Enabled() bool { return active.Load() != nil }

// Fire consults the active schedule at a named site: it returns an
// injected error, panics with a PanicValue, invokes the schedule's cancel
// hook, or — in the overwhelmingly common disabled case — returns nil
// after a single atomic load.
func Fire(site string) error {
	s := active.Load()
	if s == nil {
		return nil
	}
	return s.fire(site)
}

// Activate installs the schedule process-wide and returns the function
// that deactivates it. Only one schedule may be active at a time;
// Activate panics if another is already installed (tests must serialize
// their schedules).
func Activate(s *Schedule) (deactivate func()) {
	if !active.CompareAndSwap(nil, s) {
		panic("faultinject: a schedule is already active")
	}
	return func() { active.CompareAndSwap(s, nil) }
}
