package faultinject

import (
	"errors"
	"sync"
	"testing"
)

// drive fires a schedule over a fixed site/hit sequence, recovering
// injected panics, and returns the observed fired list.
func drive(s *Schedule, sites []string, hitsPerSite int) []Fired {
	for i := 0; i < hitsPerSite; i++ {
		for _, site := range sites {
			func() {
				defer func() { recover() }()
				_ = s.fire(site)
			}()
		}
	}
	return s.Fired()
}

func TestScheduleDeterministicPerSeed(t *testing.T) {
	sites := []string{"a", "b", "core.stage.route"}
	for seed := uint64(0); seed < 20; seed++ {
		f1 := drive(New(seed, WithRate(4)), sites, 50)
		f2 := drive(New(seed, WithRate(4)), sites, 50)
		if len(f1) != len(f2) {
			t.Fatalf("seed %d: fired %d vs %d", seed, len(f1), len(f2))
		}
		for i := range f1 {
			if f1[i] != f2[i] {
				t.Fatalf("seed %d: fired[%d] = %+v vs %+v", seed, i, f1[i], f2[i])
			}
		}
	}
}

func TestScheduleDeterministicUnderConcurrency(t *testing.T) {
	// The set of (site, hit) decisions must not depend on which goroutine
	// reaches a hit: hammer one site from many goroutines and compare the
	// fired set (order aside) with a serial run.
	serial := drive(New(7, WithRate(3), WithKinds(Error)), []string{"s"}, 400)
	conc := New(7, WithRate(3), WithKinds(Error))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = conc.fire("s")
			}
		}()
	}
	wg.Wait()
	want := map[Fired]bool{}
	for _, f := range serial {
		want[f] = true
	}
	got := conc.Fired()
	if len(got) != len(serial) {
		t.Fatalf("concurrent fired %d, serial %d", len(got), len(serial))
	}
	for _, f := range got {
		if !want[f] {
			t.Fatalf("concurrent fired unexpected %+v", f)
		}
	}
}

func TestRateOneFiresEveryHit(t *testing.T) {
	s := New(1, WithRate(1), WithKinds(Error))
	for i := 0; i < 10; i++ {
		if err := s.fire("x"); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: err = %v, want ErrInjected", i, err)
		}
	}
	if n := s.FiredByKind(Error); n != 10 {
		t.Fatalf("fired = %d, want 10", n)
	}
}

func TestSiteFilter(t *testing.T) {
	s := New(3, WithRate(1), WithKinds(Error), WithSites("only"))
	if err := s.fire("other"); err != nil {
		t.Fatalf("filtered site fired: %v", err)
	}
	if err := s.fire("only"); !errors.Is(err, ErrInjected) {
		t.Fatalf("eligible site did not fire: %v", err)
	}
	for _, f := range s.Fired() {
		if f.Site != "only" {
			t.Fatalf("fired at filtered site %q", f.Site)
		}
	}
}

func TestPanicKindCarriesPanicValue(t *testing.T) {
	s := New(5, WithRate(1), WithKinds(Panic))
	defer func() {
		r := recover()
		pv, ok := r.(PanicValue)
		if !ok {
			t.Fatalf("recovered %T (%v), want PanicValue", r, r)
		}
		if pv.Site != "p" || pv.Hit != 0 {
			t.Fatalf("PanicValue = %+v", pv)
		}
	}()
	_ = s.fire("p")
	t.Fatal("fire did not panic")
}

func TestCancelKindInvokesHook(t *testing.T) {
	called := 0
	s := New(9, WithRate(1), WithKinds(Cancel), WithCancelFunc(func() { called++ }))
	if err := s.fire("c"); err != nil {
		t.Fatalf("cancel fault returned error: %v", err)
	}
	if called != 1 {
		t.Fatalf("cancel hook called %d times, want 1", called)
	}
}

func TestActivateLifecycle(t *testing.T) {
	if Enabled() {
		t.Fatal("schedule active at test start")
	}
	if err := Fire("anywhere"); err != nil {
		t.Fatalf("disabled Fire: %v", err)
	}
	s := New(2, WithRate(1), WithKinds(Error), WithSites("live"))
	deactivate := Activate(s)
	if !Enabled() {
		t.Fatal("Enabled false after Activate")
	}
	if err := Fire("live"); !errors.Is(err, ErrInjected) {
		t.Fatalf("active Fire: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("second Activate did not panic")
			}
		}()
		Activate(New(3))
	}()
	deactivate()
	if Enabled() {
		t.Fatal("Enabled true after deactivate")
	}
	if err := Fire("live"); err != nil {
		t.Fatalf("Fire after deactivate: %v", err)
	}
}
